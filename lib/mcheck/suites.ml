(* Model-checking scenarios for the real lock-free layer.  Every target
   instantiates the *production* functor (Spinlock, Mcs, Barrier, Deque,
   Oplog, Guard) over the controlled runtime — nothing is re-implemented
   for checking — and pairs it with the property that makes its
   correctness argument: mutual exclusion as a counter invariant,
   barrier visibility and round counting, deque conservation under a
   1-owner/2-thief partition, Oplog exactly-once merge in (ts, core)
   order, and the Ordo certainly-before contract for Guard stamps.

   The scenario shapes ([Barrier_scenario], [Deque_scenario]) are
   functors so the seeded mutants in test/mutants run the *same*
   workload and property as the genuine structures: a mutant is killed
   by exactly the check its original passes. *)

module R = Mcheck.Runtime

type target = {
  t_name : string;
  t_descr : string;
  t_run : Mcheck.config -> Mcheck.outcome;
  t_replays : Mcheck.step array -> string option;
      (** guided replay of a counterexample schedule; [Some reason] iff
          it still violates — confirms shrunk traces reproduce *)
  t_render : Mcheck.step array -> Ordo_trace.Trace.t;
      (** replay a counterexample with the [Ordo_trace] sink installed *)
}

(* All three entry points share init/threads/prop (and any per-target
   config tweak, e.g. Guard's skew), so a replayed or rendered schedule
   exercises exactly the checked scenario. *)
let mk ~name ~descr ?(tweak = fun (c : Mcheck.config) -> c) ~init ~threads ~prop () =
  {
    t_name = name;
    t_descr = descr;
    t_run = (fun config -> Mcheck.check ~config:(tweak config) ~init ~threads ~prop ());
    t_replays =
      (fun schedule ->
        Mcheck.replay_check ~config:(tweak Mcheck.default) ~init ~threads ~prop ~schedule ());
    t_render =
      (fun schedule ->
        Mcheck.render_trace ~config:(tweak Mcheck.default) ~init ~threads ~schedule ());
  }

(* ---- spinlock / MCS: mutual exclusion ---- *)

module Sl = Ordo_runtime.Spinlock.Make (R)
module Mcs = Ordo_runtime.Mcs.Make (R)

(* Two threads, one read-modify-write critical section each: any mutual
   exclusion failure loses an increment. *)
let spinlock =
  let init () = (Sl.create (), R.cell 0) in
  let body (l, c) =
    Sl.acquire l;
    let v = R.read c in
    R.write c (v + 1);
    Sl.release l
  in
  mk ~name:"spinlock" ~descr:"ticket lock: 2 threads x 1 RMW critical section" ~init
    ~threads:[ body; body ]
    ~prop:(fun (_, c) -> R.read c = 2)
    ()

let mcs =
  let init () = (Mcs.create (), R.cell 0) in
  let body (l, c) =
    let tok = Mcs.acquire l in
    let v = R.read c in
    R.write c (v + 1);
    Mcs.release l tok
  in
  mk ~name:"mcs" ~descr:"MCS queue lock: 2 threads x 1 RMW critical section" ~init
    ~threads:[ body; body ]
    ~prop:(fun (_, c) -> R.read c = 2)
    ()

(* ---- barrier: visibility across the wait, and round counting ---- *)

module type BARRIER = sig
  type t

  val create : int -> t
  val wait : t -> unit
end

module Barrier_scenario (B : BARRIER) = struct
  type st = { bar : B.t; flags : int R.cell array; seen : int array; rounds : int array }

  (* Each thread publishes a flag before the first wait and must see the
     other's flag after it; a second round catches generation/count
     corruption (a broken barrier deadlocks, which the explorer reports
     as a livelock). *)
  let init () =
    { bar = B.create 2; flags = [| R.cell 0; R.cell 0 |]; seen = [| -1; -1 |]; rounds = [| 0; 0 |] }

  let body i st =
    R.write st.flags.(i) 1;
    B.wait st.bar;
    st.seen.(i) <- R.read st.flags.(1 - i);
    st.rounds.(i) <- st.rounds.(i) + 1;
    B.wait st.bar;
    st.rounds.(i) <- st.rounds.(i) + 1

  let prop st =
    st.seen.(0) = 1 && st.seen.(1) = 1 && st.rounds.(0) = 2 && st.rounds.(1) = 2

  let target ~name ~descr = mk ~name ~descr ~init ~threads:[ body 0; body 1 ] ~prop ()
end

module Barrier_genuine = Barrier_scenario (Ordo_runtime.Barrier.Make (R))

let barrier =
  Barrier_genuine.target ~name:"barrier"
    ~descr:"generation barrier: 2 threads x 2 rounds, pre-wait flags visible after"

(* ---- deque: conservation under 1 owner + 2 thieves ---- *)

module type DEQUE = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> stamp:int -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
end

module Deque_scenario (D : DEQUE) = struct
  type st = { dq : int D.t; got : int list array }

  let init () = { dq = D.create ~capacity:4 (); got = [| []; []; [] |] }

  let owner st =
    D.push st.dq ~stamp:1 1;
    D.push st.dq ~stamp:2 2;
    (match D.pop st.dq with
    | Some v -> st.got.(0) <- v :: st.got.(0)
    | None -> ());
    match D.pop st.dq with
    | Some v -> st.got.(0) <- v :: st.got.(0)
    | None -> ()

  let thief i st =
    match D.steal st.dq with
    | Some v -> st.got.(i) <- v :: st.got.(i)
    | None -> ()

  (* Every pushed element is taken or still queued, exactly once: loss
     and duplication both break the multiset equality. *)
  let prop st =
    let rec drain acc =
      match D.pop st.dq with Some v -> drain (v :: acc) | None -> acc
    in
    let rest = drain [] in
    let all = List.concat [ st.got.(0); st.got.(1); st.got.(2); rest ] in
    List.sort compare all = [ 1; 2 ]

  let target ~name ~descr = mk ~name ~descr ~init ~threads:[ owner; thief 1; thief 2 ] ~prop ()
end

module Deque_genuine = Deque_scenario (Ordo_sched.Deque.Make (R))

let deque =
  Deque_genuine.target ~name:"deque"
    ~descr:"Chase-Lev deque: 1 owner (2 push, 2 pop) + 2 thieves, conservation"

(* ---- Oplog: exactly-once merge in (ts, core) order ---- *)

type oplog_st = {
  ol_append : int -> unit;
  ol_sync : unit -> unit;
  ol_result : unit -> (int * int * int * int) list;
      (* (batch, ts, core, op) in merge order *)
}

(* The merge order one synchronize guarantees: ascending (ts, core)
   within its own drained batch.  Across batches it cannot hold — an
   append whose CAS lost to the drain retries and legitimately lands
   its (older) stamp in the next batch. *)
let rec batch_ordered = function
  | (b1, s1, c1, _) :: (((b2, s2, c2, _) :: _) as rest) ->
    (b1 <> b2 || s1 < s2 || (s1 = s2 && c1 <= c2)) && batch_ordered rest
  | _ -> true

(* Per-core stamps are ascending across the whole run: appends on one
   core are sequential and a CAS retry re-publishes in order. *)
let core_monotone ms =
  let last = Hashtbl.create 4 in
  List.for_all
    (fun (_, s, c, _) ->
      let ok = match Hashtbl.find_opt last c with None -> true | Some p -> s > p in
      Hashtbl.replace last c s;
      ok)
    ms

let oplog =
  (* Timestamp.Logical is generative (it allocates its counter cell at
     application time), so both functors are applied inside [init] —
     each replay gets a fresh clock and a fresh log. *)
  let init () =
    let module T = Ordo_core.Timestamp.Logical (R) () in
    let module O = Ordo_oplog.Oplog.Make (R) (T) in
    let t = O.create ~threads:3 () in
    let merged = ref [] in
    let batch = ref 0 in
    {
      ol_append = (fun v -> O.append t v);
      ol_sync =
        (fun () ->
          incr batch;
          let b = !batch in
          ignore
            (O.synchronize t ~apply:(fun ~ts ~core v ->
                 merged := (b, ts, core, v) :: !merged)
              : int));
      ol_result = (fun () -> List.rev !merged);
    }
  in
  let appender base st =
    st.ol_append base;
    st.ol_append (base + 1)
  in
  let drainer st = st.ol_sync () in
  let prop st =
    st.ol_sync ();
    (* final drain; runs after the threads, outside the scheduler *)
    let ms = st.ol_result () in
    List.length ms = 4
    && List.sort compare (List.map (fun (_, _, _, v) -> v) ms) = [ 10; 11; 20; 21 ]
    && batch_ordered ms && core_monotone ms
  in
  mk ~name:"oplog"
    ~descr:"Oplog: 2 appenders x 2 + concurrent synchronize, exactly-once (ts,core) merge"
    ~init ~threads:[ appender 10; appender 20; drainer ] ~prop ()

(* ---- Guard: the certainly-before contract under skew ---- *)

type guard_st = {
  g_time : unit -> int;
  g_violations : unit -> int;
  g_fallback : unit -> bool;
  g_stamps : Mcheck.Stamps.t;
}

let guard_boundary = 4
let guard_skew = [| 0; 2 |]  (* within the boundary: the healthy machine *)

let mk_guard_init ~skew:_ () =
  let module G =
    Ordo_core.Guard.Make
      (R)
      (struct
        let boundary = guard_boundary
        let policy = Ordo_core.Guard.Inflate
        let watchdog_divisor = Ordo_core.Guard.Defaults.watchdog_divisor
        let confirm = 1
        let publish_period = 1  (* every stamp runs the one-way publish probe *)
        let max_threads = 2
      end)
  in
  {
    g_time = G.get_time;
    g_violations = G.violations;
    g_fallback = G.in_fallback;
    g_stamps = Mcheck.Stamps.create ();
  }

let guard_body st =
  for _ = 1 to 2 do
    Mcheck.Stamps.observe st.g_stamps (st.g_time ())
  done

(* In every interleaving: no guard detection fires on a healthy machine,
   and every certain cmp_time verdict agrees with ground-truth step
   order (the paper's ORDO_BOUNDARY contract, model-checked). *)
let guard_prop st =
  st.g_violations () = 0
  && (not (st.g_fallback ()))
  && Mcheck.Stamps.ordo_consistent ~boundary:guard_boundary st.g_stamps

let guard =
  mk ~name:"guard"
    ~descr:"Guard publish: 2 threads x 2 stamps, skew 2 <= boundary 4, certainly-before"
    ~tweak:(fun c -> { c with Mcheck.skew = guard_skew })
    ~init:(mk_guard_init ~skew:guard_skew) ~threads:[ guard_body; guard_body ]
    ~prop:guard_prop ()

let all = [ spinlock; mcs; barrier; deque; oplog; guard ]
let find name = List.find_opt (fun t -> t.t_name = name) all
