(** Systematic concurrency checking for the lock-free layer.

    [Mcheck] is a third implementation of {!Ordo_runtime.Runtime_intf.S}:
    cooperative effect-based threads under a controlling scheduler, where
    every shared-memory operation ([read]/[write]/[cas]/[fetch_add]/
    [exchange]/[fence]) and every [pause] is a scheduling point.  A
    depth-first explorer replays the program once per interleaving —
    OCaml continuations are one-shot, so each interleaving re-executes
    the program from scratch under a recorded schedule prefix — and
    prunes with dynamic partial-order reduction (Flanagan–Godefroid
    backtrack sets over vector-clock happens-before, plus sleep sets), so
    only interleavings that differ in the order of {e conflicting}
    accesses are explored.  Because every algorithm in this tree is a
    functor over [Runtime_intf.S], the real [Spinlock], [Mcs], [Barrier],
    [Deque], [Oplog] and [Guard] code is checked unchanged.

    {2 Spin loops and fairness}

    Unbounded spin loops ([while R.read c do R.pause () done]) have
    infinite interleaving spaces under an adversarial scheduler.  The
    explorer therefore gives [pause] CHESS-style fair-yield semantics: a
    paused thread is not runnable again until every other unfinished,
    unblocked thread has taken at least one step.  Spins of a terminating
    algorithm then take finitely many turns, and exploration is exhaustive
    {e modulo that fairness assumption} — schedules that starve a spinning
    thread forever are excluded, which is exactly the assumption the live
    substrate's OS scheduler provides.  If every unfinished thread is
    pause-blocked at once, all are released; more than [spin_bound]
    pauses per thread without a single write anywhere is reported as a
    livelock/deadlock violation.

    {2 Ordo semantics}

    [get_time] returns the global step counter plus a configurable
    per-thread skew, so "step order" is ground-truth real time and skew is
    the hazard: with [skew <= boundary], a [cmp_time] verdict of certainly
    before/after must agree with step order in {e every} interleaving
    (checked by {!Stamps.ordo_consistent}); with [skew > boundary] it must
    not — the standard negative test. *)

(** {1 The controlled runtime} *)

module Runtime : Ordo_runtime.Runtime_intf.S
(** Valid only inside a {!check} callback (threads of the current
    replay); calling it elsewhere raises. *)

(** {1 Configuration} *)

type mode =
  | Dpor  (** DPOR + sleep sets: sound and complete under the fairness
              assumption, explores a reduced set of interleavings. *)
  | Exhaustive  (** every interleaving, no pruning: the oracle the DPOR
                    mode is tested against, and the honest denominator of
                    the pruning-factor tables.  Tiny targets only. *)
  | Bounded of int  (** DFS restricted to schedules with at most [n]
                        preemptions (context switches at a point where
                        the running thread was still enabled).  Unsound
                        in general — the budget is logged in {!stats} —
                        but finds most bugs at [n <= 2]. *)

type config = {
  mode : mode;
  max_interleavings : int;  (** give up (→ [Budget_exceeded]) beyond this *)
  max_steps : int;  (** per-interleaving step cap (runaway guard) *)
  spin_bound : int;  (** writeless pauses per thread before a livelock verdict *)
  skew : int array;  (** [skew.(tid mod len)] is added to [get_time] *)
  seed : int;  (** rotates default thread choice; determinism tests vary it *)
}

val default : config
(** [Dpor], 2_000_000 interleavings, 100_000 steps, spin bound 64, zero
    skew, seed 0. *)

(** {1 Results} *)

type stats = {
  interleavings : int;  (** maximal executions run to completion *)
  steps_total : int;  (** scheduling points executed, all replays *)
  sleep_pruned : int;  (** executions cut early as sleep-set redundant *)
  budget_pruned : int;  (** branches dropped by a [Bounded] budget *)
  max_depth : int;  (** longest execution, in steps *)
  preemption_bound : int option;  (** the logged budget, [Bounded] only *)
}

(** One scheduling point of a counterexample schedule. *)
type step = {
  s_tid : int;
  s_kind : string;  (** ["read"], ["write"], ["cas"], ... *)
  s_cell : int;  (** cell id, [-1] for fence/pause *)
}

type violation = {
  reason : string;  (** which property failed, or the livelock verdict *)
  schedule : step array;  (** minimal failing interleaving, shrunk *)
  pretty : string;  (** deterministic one-line-per-step rendering *)
  switches : int;  (** context switches in [schedule] *)
}

type outcome =
  | Verified of stats
  | Violation of violation * stats
  | Budget_exceeded of stats

val check :
  ?config:config ->
  init:(unit -> 'state) ->
  threads:('state -> unit) list ->
  prop:('state -> bool) ->
  unit ->
  outcome
(** [check ~init ~threads ~prop ()] explores the interleavings of
    [threads] (each applied to the ['state] made by a fresh [init] per
    replay).  Cells, locks and generative timestamp functors must be
    allocated inside [init] (or inside the thread bodies) so each replay
    starts from the same initial state.  [prop] is evaluated on the final
    state of every maximal interleaving; a [false] verdict, an exception
    escaping a thread, or a livelock yields a [Violation] whose schedule
    has been greedily shrunk to a locally-minimal number of context
    switches (deterministic: same program + config ⇒ byte-identical
    [pretty]). *)

val replay :
  init:(unit -> 'state) ->
  threads:('state -> unit) list ->
  schedule:step array ->
  'state
(** Re-execute one interleaving under the recorded schedule (excess or
    disabled entries are skipped, the tail runs non-preemptively) and
    return the final state.  The returned state is outside the checker
    context, so only its plain (non-[Runtime.cell]) fields may be
    inspected; use {!replay_check} to re-evaluate a property that reads
    cells. *)

val replay_check :
  ?config:config ->
  init:(unit -> 'state) ->
  threads:('state -> unit) list ->
  prop:('state -> bool) ->
  schedule:step array ->
  unit ->
  string option
(** Guided replay that re-evaluates the property in context: [Some
    reason] iff the schedule still produces a violation (property
    failure, thread exception, or livelock) — used to confirm shrunk
    counterexamples reproduce. *)

val render_trace :
  ?config:config ->
  init:(unit -> 'state) ->
  threads:('state -> unit) list ->
  schedule:step array ->
  unit ->
  Ordo_trace.Trace.t
(** Replay a counterexample with an [Ordo_trace] sink installed: every
    scheduling point is emitted as an ["mcheck.step"] probe (b = cell id,
    c = kind code) at time = step index, [get_time] reads surface as
    [Clock_read] events, and the algorithms' own spans/probes flow
    through unchanged — so the stock offline checker
    ([Ordo_trace.Checker.check ~boundary]) and the Chrome exporter work
    on model-checking counterexamples. *)

(** {1 Ordo-aware properties} *)

module Stamps : sig
  type t
  (** A per-replay recorder of issued timestamps: allocate in [init],
      call {!observe} wherever the algorithm under test obtains a stamp.
      Each observation records [(value, ground-truth issue step, tid)]. *)

  val create : unit -> t

  val observe : t -> int -> unit
  (** Record a stamp the {e calling thread} obtained from [get_time]:
      its ground-truth issue step is reconstructed as the value minus
      the thread's configured skew (the observe call itself may run many
      steps after the read). *)

  val count : t -> int

  val ordo_consistent : boundary:int -> t -> bool
  (** The paper's contract as a model-checked property: for every pair of
      observations, a stamp {e certainly after} another (beyond
      [boundary], via [Ordo_analyze.Hb.cmp]) was also observed at a
      strictly later step.  Total over all interleavings, this is
      "certain [cmp_time] verdicts are real-time order". *)

  val certainly_before : boundary:int -> t -> int -> int -> bool
  (** [certainly_before ~boundary s i j]: the [i]-th and [j]-th recorded
      stamps (in observation order) compare certainly-before. *)
end

module Lin : sig
  type 'op t
  (** Complete-history linearizability check against a sequential model:
      record each finished operation (with its observed result folded
      into ['op]) at its linearization candidate point; {!check} searches
      interleavings of the per-thread sequences that the model accepts.
      Histories are tiny (model-checked scenarios), so the exponential
      search is fine. *)

  val create : unit -> 'op t
  val record : 'op t -> 'op -> unit

  val check : 'op t -> init:'m -> step:('m -> 'op -> 'm option) -> bool
  (** [step m op] is [Some m'] when the sequential model in state [m]
      accepts [op].  [check] is true iff some interleaving respecting
      per-thread order is fully accepted. *)
end
