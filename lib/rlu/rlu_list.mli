(** Sorted linked-list set protected by RLU — the per-bucket structure of
    the paper's hash-table benchmark.

    Readers traverse without synchronization inside an RLU section;
    writers lock the predecessor (and the victim for removals), validate
    the traversal and stage the pointer update.  Conflicts abort the
    section and retry internally, so the operations below always return a
    definitive answer. *)

module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) : sig
  module Rlu : module type of Rlu.Make (R) (T)

  type node = { key : int; next : node Rlu.obj option }

  type set

  val create : ?node_work:int -> unit -> set
  (** Empty set.  [node_work] charges that much private compute per node
      visited during traversals — it models the pointer-chase cost of a
      table far larger than the caches when running under the simulator,
      and defaults to zero (no effect on the live runtime). *)

  val contains : Rlu.t -> set -> int -> bool
  val add : Rlu.t -> set -> int -> bool
  (** [false] if the key was already present. *)

  val remove : Rlu.t -> set -> int -> bool
  (** [false] if the key was absent. *)

  val to_list : Rlu.t -> set -> int list
  (** Ascending keys, read in one RLU section. *)

  val size : Rlu.t -> set -> int
end
