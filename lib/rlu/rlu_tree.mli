(** External (leaf-oriented) binary search tree protected by RLU — the
    paper's citrus-tree benchmark structure (Section 6.4), with complex
    multi-object updates: an insert splits a leaf into a router, a delete
    collapses a router into its surviving child.

    Because updates replace an object's *value* while its identity stays
    pinned in the parent, inserts lock one object and deletes lock three
    (the router, the victim leaf and the surviving sibling), exercising
    RLU's multi-object commit path harder than the linked list does. *)

module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) : sig
  module Rlu : module type of Rlu.Make (R) (T)

  type tree

  val create : ?node_work:int -> unit -> tree
  (** Empty tree.  [node_work] charges private compute per router visited
      (see {!Rlu_list.Make.create}). *)

  val contains : Rlu.t -> tree -> int -> bool
  val add : Rlu.t -> tree -> int -> bool
  val remove : Rlu.t -> tree -> int -> bool

  val to_list : Rlu.t -> tree -> int list
  (** Ascending keys, read in one RLU section. *)

  val size : Rlu.t -> tree -> int

  val depth : Rlu.t -> tree -> int
  (** Height of the tree (0 for empty), for balance diagnostics. *)
end
