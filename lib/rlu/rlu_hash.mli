(** The paper's RLU hash-table benchmark structure: an array of buckets,
    each an RLU-protected sorted linked list, all sharing one RLU instance
    (thread contexts and clock). *)

module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) : sig
  module List_set : module type of Rlu_list.Make (R) (T)
  module Rlu : module type of List_set.Rlu

  type t

  val create :
    ?defer:int -> ?node_work:int -> threads:int -> buckets:int -> unit -> t
  (** [defer] and [node_work] are forwarded to {!Rlu.create} and
      {!List_set.create} respectively. *)

  val contains : t -> int -> bool
  val add : t -> int -> bool
  val remove : t -> int -> bool

  val size : t -> int
  (** Quiescent count across all buckets. *)

  val flush : t -> unit
  (** Flush deferred commits (deferral mode only). *)

  val stats_commits : t -> int
  val stats_aborts : t -> int
  val stats_syncs : t -> int
end
