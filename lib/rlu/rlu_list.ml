(** Sorted linked-list set protected by RLU — the node-level workload of
    the paper's hash-table benchmark (one such list per bucket).

    Writers lock the predecessor (and the victim, for removals), validate
    that the traversal is still current, and stage the pointer update; a
    conflicting lock aborts the section and retries, exactly like the
    reference RLU list. *)

module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) = struct
  module Rlu = Rlu.Make (R) (T)

  type node = { key : int; next : node Rlu.obj option }

  (* [node_work] models the per-node traversal cost of a table too large
     for the caches (pointer-chase misses on a real heap); it is charged
     as private compute at every node visit and defaults to zero. *)
  type set = { head : node Rlu.obj; node_work : int }

  let create ?(node_work = 0) () =
    { head = Rlu.obj { key = min_int; next = None }; node_work }

  (* Lock an object without changing it (lock-then-validate). *)
  let try_lock rlu o = Rlu.try_update rlu o Fun.id

  let contains rlu set key =
    Rlu.reader_lock rlu;
    let rec walk cursor =
      match cursor with
      | None -> false
      | Some o ->
        R.work set.node_work;
        let n = Rlu.deref rlu o in
        if n.key < key then walk n.next else n.key = key
    in
    let found = walk (Rlu.deref rlu set.head).next in
    Rlu.reader_unlock rlu;
    found

  (* Find the last node with key < [key], starting from the sentinel. *)
  let rec find_prev rlu set prev key =
    let p = Rlu.deref rlu prev in
    match p.next with
    | None -> prev
    | Some o ->
      R.work set.node_work;
      if (Rlu.deref rlu o).key < key then find_prev rlu set o key else prev

  let rec add rlu set key =
    Rlu.reader_lock rlu;
    let prev = find_prev rlu set set.head key in
    let already_present =
      match (Rlu.deref rlu prev).next with
      | Some o -> (Rlu.deref rlu o).key = key
      | None -> false
    in
    if already_present then begin
      (* Read-only exit: no lock was taken, nothing to abort. *)
      Rlu.reader_unlock rlu;
      false
    end
    else if not (try_lock rlu prev) then begin
      Rlu.abort rlu;
      add rlu set key
    end
    else begin
      (* We hold [prev]; re-read through our copy and re-validate. *)
      let p = Rlu.deref rlu prev in
      match p.next with
      | Some o when (Rlu.deref rlu o).key = key ->
        Rlu.abort rlu;
        false
      | Some o when (Rlu.deref rlu o).key < key ->
        (* A concurrent insert slipped in between traversal and lock. *)
        Rlu.abort rlu;
        add rlu set key
      | _ ->
        let staged =
          Rlu.try_update rlu prev (fun p ->
              { p with next = Some (Rlu.obj { key; next = p.next }) })
        in
        assert staged;
        Rlu.reader_unlock rlu;
        true
    end

  let rec remove rlu set key =
    Rlu.reader_lock rlu;
    let prev = find_prev rlu set set.head key in
    let retry () =
      Rlu.abort rlu;
      remove rlu set key
    in
    let found =
      match (Rlu.deref rlu prev).next with
      | Some o -> (Rlu.deref rlu o).key = key
      | None -> false
    in
    if not found then begin
      Rlu.reader_unlock rlu;
      false
    end
    else if not (try_lock rlu prev) then retry ()
    else begin
      let p = Rlu.deref rlu prev in
      match p.next with
      | Some victim when (Rlu.deref rlu victim).key = key ->
        if not (try_lock rlu victim) then retry ()
        else begin
          let v = Rlu.deref rlu victim in
          let staged = Rlu.try_update rlu prev (fun p -> { p with next = v.next }) in
          assert staged;
          Rlu.reader_unlock rlu;
          true
        end
      | Some victim when (Rlu.deref rlu victim).key < key ->
        (* Concurrent insert moved the frontier; retry from the head. *)
        retry ()
      | _ ->
        Rlu.abort rlu;
        false
    end

  let to_list rlu set =
    Rlu.reader_lock rlu;
    let rec walk acc cursor =
      match cursor with
      | None -> List.rev acc
      | Some o ->
        let n = Rlu.deref rlu o in
        walk (n.key :: acc) n.next
    in
    let keys = walk [] (Rlu.deref rlu set.head).next in
    Rlu.reader_unlock rlu;
    keys

  let size rlu set = List.length (to_list rlu set)
end
