module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) = struct
  module Rlu = Rlu.Make (R) (T)

  (* External BST: routers only route ([left] keys < [rkey] <= [right]
     keys); data lives in the leaves.  Structural changes replace an
     object's value in place, so parents never need re-pointing on
     insert, and a delete rewrites exactly one router. *)
  type node =
    | Leaf of int option  (* None = empty slot *)
    | Router of { rkey : int; left : node Rlu.obj; right : node Rlu.obj }

  type tree = { root : node Rlu.obj; node_work : int }

  let create ?(node_work = 0) () = { root = Rlu.obj (Leaf None); node_work }
  let try_lock rlu o = Rlu.try_update rlu o Fun.id

  (* Walk to the leaf responsible for [key]; returns the router above it
     (if any) and the leaf object. *)
  let rec descend rlu tree parent cursor key =
    match Rlu.deref rlu cursor with
    | Leaf _ -> (parent, cursor)
    | Router { rkey; left; right } ->
      R.work tree.node_work;
      descend rlu tree (Some cursor) (if key < rkey then left else right) key

  let contains rlu tree key =
    Rlu.reader_lock rlu;
    let _, leaf = descend rlu tree None tree.root key in
    let found = match Rlu.deref rlu leaf with Leaf (Some k) -> k = key | _ -> false in
    Rlu.reader_unlock rlu;
    found

  let rec add rlu tree key =
    Rlu.reader_lock rlu;
    let _, leaf = descend rlu tree None tree.root key in
    match Rlu.deref rlu leaf with
    | Leaf (Some k) when k = key ->
      Rlu.reader_unlock rlu;
      false
    | _ ->
      if not (try_lock rlu leaf) then begin
        Rlu.abort rlu;
        add rlu tree key
      end
      else begin
        (* Re-validate through our locked copy. *)
        match Rlu.deref rlu leaf with
        | Leaf None ->
          ignore (Rlu.try_update rlu leaf (fun _ -> Leaf (Some key)) : bool);
          Rlu.reader_unlock rlu;
          true
        | Leaf (Some k) when k = key ->
          Rlu.abort rlu;
          false
        | Leaf (Some k) ->
          (* Split the leaf into a router over the two keys. *)
          let lo = min k key and hi = max k key in
          ignore
            (Rlu.try_update rlu leaf (fun _ ->
                 Router
                   {
                     rkey = hi;
                     left = Rlu.obj (Leaf (Some lo));
                     right = Rlu.obj (Leaf (Some hi));
                   })
              : bool);
          Rlu.reader_unlock rlu;
          true
        | Router _ ->
          (* A concurrent insert split this leaf first; retry deeper. *)
          Rlu.abort rlu;
          add rlu tree key
      end

  let rec remove rlu tree key =
    Rlu.reader_lock rlu;
    let retry () =
      Rlu.abort rlu;
      remove rlu tree key
    in
    let parent, leaf = descend rlu tree None tree.root key in
    match Rlu.deref rlu leaf with
    | Leaf (Some k) when k = key -> begin
      match parent with
      | None ->
        (* The root itself is the leaf: just empty it. *)
        if not (try_lock rlu leaf) then retry ()
        else begin
          match Rlu.deref rlu leaf with
          | Leaf (Some k) when k = key ->
            ignore (Rlu.try_update rlu leaf (fun _ -> Leaf None) : bool);
            Rlu.reader_unlock rlu;
            true
          | _ -> retry ()
        end
      | Some router ->
        if not (try_lock rlu router) then retry ()
        else begin
          (* The router may have been rewritten between traversal and
             lock; re-check that [leaf] is still its child on key's side. *)
          match Rlu.deref rlu router with
          | Router { rkey; left; right } ->
            let victim, sibling = if key < rkey then (left, right) else (right, left) in
            if victim != leaf then retry ()
            else if not (try_lock rlu victim && try_lock rlu sibling) then retry ()
            else begin
              match Rlu.deref rlu victim with
              | Leaf (Some k) when k = key ->
                (* Collapse: the router takes the sibling's value; the
                   victim and the sibling object become unreachable. *)
                let hoisted = Rlu.deref rlu sibling in
                ignore (Rlu.try_update rlu router (fun _ -> hoisted) : bool);
                Rlu.reader_unlock rlu;
                true
              | _ -> retry ()
            end
          | Leaf _ -> retry ()
        end
    end
    | _ ->
      Rlu.reader_unlock rlu;
      false

  let to_list rlu tree =
    Rlu.reader_lock rlu;
    let rec walk acc cursor =
      match Rlu.deref rlu cursor with
      | Leaf None -> acc
      | Leaf (Some k) -> k :: acc
      | Router { left; right; _ } -> walk (walk acc right) left
    in
    let keys = walk [] tree.root in
    Rlu.reader_unlock rlu;
    keys

  let size rlu tree = List.length (to_list rlu tree)

  let depth rlu tree =
    Rlu.reader_lock rlu;
    let rec walk cursor =
      match Rlu.deref rlu cursor with
      | Leaf None -> 0
      | Leaf (Some _) -> 1
      | Router { left; right; _ } -> 1 + max (walk left) (walk right)
    in
    let d = walk tree.root in
    Rlu.reader_unlock rlu;
    d
end
