(** Read-Log-Update (Matveev et al., SOSP'15) over an abstract timestamp
    source — the paper's Section 4.1 case study.

    RLU gives readers unsynchronized, consistent traversals and writers
    per-thread object logs.  A writer locks an object, works on a private
    copy, and at commit time splits the memory snapshot by advancing a
    clock; readers that began after the split steal the writer's copy,
    older readers keep the original until the writer's quiescence wait
    lets it write back.

    Instantiating [Make] with [Ordo_core.Timestamp.Logical] yields the
    original algorithm, whose global clock is the scalability bottleneck
    of Figures 1/11/12; instantiating it with an Ordo source removes the
    contended fetch-and-add: commits take their write clock with
    [new_time (local_clock + boundary)] (the extra boundary protects a
    stealing reader on a core with negative skew), and all clock
    comparisons go through the uncertainty-aware [cmp]. *)

module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) : sig
  type t
  (** One RLU instance: the set of thread contexts plus the clock. *)

  type 'a obj
  (** An RLU-protected object holding values of type ['a].  Values are
      treated as immutable snapshots: an update replaces the value. *)

  val create : ?defer:int -> ?commit_margin:int -> threads:int -> unit -> t
  (** [create ~threads ()] sizes the instance for thread ids
      [0 .. threads-1].  With [~defer:k], commits do not synchronize:
      objects stay locked and write-backs accumulate until [k] sections
      have committed (or a conflict forces a flush) — the deferral-based
      variant of Figure 12.  [commit_margin] overrides the extra
      ORDO_BOUNDARY added to the commit clock (Section 4.1's correctness
      margin; defaults to the timestamp source's boundary) — exposed for
      the ablation study only. *)

  val obj : 'a -> 'a obj
  (** Wrap an initial value. *)

  val reader_lock : t -> unit
  (** Enter an RLU section on the calling thread. *)

  val reader_unlock : t -> unit
  (** Leave the section; if the thread updated objects, this commits:
      advance the write clock, wait for older readers, write back, and
      release locks (deferred in [defer] mode). *)

  val deref : t -> 'a obj -> 'a
  (** Read an object inside a section, stealing a committing writer's
      copy when this section's clock is certainly newer. *)

  val try_update : t -> 'a obj -> ('a -> 'a) -> bool
  (** Lock the object (if free) and stage [f current] as its new value.
      [false] on a write-write conflict: the caller must [abort] and
      retry its section.  Re-updating an object this thread already holds
      composes. *)

  val abort : t -> unit
  (** Abandon the current section: undo staged updates, release locks
      taken in this section, leave the section.  In defer mode this also
      flushes previously deferred commits so conflicting threads can make
      progress. *)

  val flush : t -> unit
  (** Force deferred commits out (no-op when nothing is deferred).  Must
      be called outside a section.  In defer mode every thread MUST flush
      before it stops running sections: deferred commits keep their
      objects locked, and a thread that exits still holding them blocks
      conflicting writers forever. *)

  val stats_commits : t -> int
  val stats_aborts : t -> int
  val stats_syncs : t -> int
  (** Quiescence waits executed (one per undeferred commit / flush). *)
end
