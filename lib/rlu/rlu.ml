module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) = struct
  let infinity_ts = max_int

  (* The whole object header lives in one cell (one cache line): either
     free with its committed value, or held by a writer that keeps both
     the committed value and its working copy visible for stealing. *)
  type 'a state = Free of 'a | Held of { owner : int; data : 'a; copy : 'a }
  type 'a obj = 'a state R.cell

  (* One staged update.  [undo] restores the pre-section state (abort).
     Commit is two-phase, as in the reference RLU: [writeback] installs
     the working copy as the committed value while the lock is still held
     (no concurrent writer can slip between dependent updates), then
     [release] drops the lock.  Both skip objects this thread no longer
     holds, so duplicate entries from re-updates stay harmless. *)
  type entry = { undo : unit -> unit; writeback : unit -> unit; release : unit -> unit }

  type ctx = {
    run_cnt : int R.cell;  (* odd while inside a section *)
    local_clock : int R.cell;
    write_clock : int R.cell;
    mutable is_writer : bool;
    mutable section : entry list;  (* newest first *)
    mutable deferred : entry list;
    mutable deferred_commits : int;
    sync_scratch : int array;
    mutable commits : int;
    mutable aborts : int;
    mutable syncs : int;
  }

  type t = { ctxs : ctx array; defer : int; margin : int }

  let create ?(defer = 0) ?commit_margin ~threads () =
    if threads < 1 then invalid_arg "Rlu.create: threads must be >= 1";
    let margin = match commit_margin with Some m -> m | None -> T.boundary in
    let ctx _ =
      {
        run_cnt = R.cell 0;
        local_clock = R.cell 0;
        write_clock = R.cell infinity_ts;
        is_writer = false;
        section = [];
        deferred = [];
        deferred_commits = 0;
        sync_scratch = Array.make threads 0;
        commits = 0;
        aborts = 0;
        syncs = 0;
      }
    in
    { ctxs = Array.init threads ctx; defer; margin }

  let obj v = R.cell (Free v)
  let my t = t.ctxs.(R.tid ())

  module Order = Ordo_core.Timestamp.Order (T)

  let certainly_after = Order.certainly_after

  let reader_lock t =
    let ctx = my t in
    R.span_begin "rlu.section";
    R.write ctx.run_cnt (R.read ctx.run_cnt + 1);
    R.fence ();
    R.write ctx.local_clock (T.get ())

  let rec deref t obj =
    let ctx = my t in
    match R.read obj with
    | Free v -> v
    | Held { owner; data; copy } as seen ->
      if owner = R.tid () then copy
      else begin
        let wc = R.read t.ctxs.(owner).write_clock in
        (* Pin the (snapshot, write-clock) pairing: every state transition
           allocates a fresh record, so if the object still carries [seen]
           the owner neither committed nor aborted while we fetched its
           clock.  Otherwise retry on the new state — without this, a
           reader could return a stale committed value or even an aborted
           working copy. *)
        if R.read obj != seen then deref t obj
        else if
          (* Steal the committing writer's copy only when our section
             started certainly after its write clock (paper Fig. 7). *)
          certainly_after (R.read ctx.local_clock) wc
        then copy
        else data
      end

  (* Install the copy as the committed value, keeping the lock: readers
     that do not steal now see the new value, and no writer can acquire
     the object until every write of this commit is backed. *)
  let writeback_entry obj me () =
    match R.read obj with
    | Held { owner; copy; _ } when owner = me -> R.write obj (Held { owner = me; data = copy; copy })
    | Held _ | Free _ -> ()

  let release_entry obj me () =
    match R.read obj with
    | Held { owner; copy; _ } when owner = me -> R.write obj (Free copy)
    | Held _ | Free _ -> ()

  let try_update t obj f =
    let ctx = my t in
    let me = R.tid () in
    match R.read obj with
    | Held { owner; _ } when owner <> me -> false
    | Held { data; copy; _ } as prev ->
      (* Already ours (same section, or an earlier deferred one). *)
      R.write obj (Held { owner = me; data; copy = f copy });
      ctx.is_writer <- true;
      ctx.section <- { undo = (fun () -> R.write obj prev); writeback = writeback_entry obj me; release = release_entry obj me } :: ctx.section;
      true
    | Free v as prev ->
      if R.cas obj prev (Held { owner = me; data = v; copy = f v }) then begin
        ctx.is_writer <- true;
        ctx.section <- { undo = (fun () -> R.write obj prev); writeback = writeback_entry obj me; release = release_entry obj me } :: ctx.section;
        true
      end
      else false

  (* RCU-style drain (paper Fig. 7, lines 37–50): wait until every thread
     is out of its section, has moved to a new one, or holds a section
     clock certainly newer than [wc]. *)
  let synchronize t ctx wc =
    R.span_begin "rlu.sync";
    let n = Array.length t.ctxs in
    let me = R.tid () in
    for j = 0 to n - 1 do
      if j <> me then ctx.sync_scratch.(j) <- R.read t.ctxs.(j).run_cnt
    done;
    for j = 0 to n - 1 do
      if j <> me then begin
        let other = t.ctxs.(j) in
        let observed = ctx.sync_scratch.(j) in
        if observed land 1 <> 0 then begin
          let waiting = ref true in
          while !waiting do
            if R.read other.run_cnt <> observed then waiting := false
            else if certainly_after (R.read other.local_clock) wc then waiting := false
            else R.pause ()
          done
        end
      end
    done;
    ctx.syncs <- ctx.syncs + 1;
    R.span_end "rlu.sync"

  (* Two-phase: back every copy while all locks are held, then release. *)
  let commit_entries entries =
    let ordered = List.rev entries in
    List.iter (fun e -> e.writeback ()) ordered;
    List.iter (fun e -> e.release ()) ordered

  let flush_deferred t ctx =
    if ctx.deferred <> [] then begin
      let wc = T.after (T.get () + t.margin) in
      R.write ctx.write_clock wc;
      synchronize t ctx wc;
      commit_entries ctx.deferred;
      R.write ctx.write_clock infinity_ts;
      ctx.deferred <- [];
      ctx.deferred_commits <- 0
    end

  let commit t ctx =
    if t.defer > 0 then begin
      (* Deferral: keep the locks, batch the quiescence. *)
      ctx.deferred <- ctx.section @ ctx.deferred;
      ctx.section <- [];
      ctx.deferred_commits <- ctx.deferred_commits + 1;
      if ctx.deferred_commits >= t.defer then flush_deferred t ctx
    end
    else begin
      (* The extra boundary keeps a stealing reader on a negatively skewed
         core from seeing the pre-commit snapshot (Section 4.1). *)
      let wc = T.after (R.read ctx.local_clock + t.margin) in
      R.write ctx.write_clock wc;
      synchronize t ctx wc;
      commit_entries ctx.section;
      R.write ctx.write_clock infinity_ts;
      ctx.section <- []
    end;
    ctx.commits <- ctx.commits + 1;
    ctx.is_writer <- false

  let reader_unlock t =
    let ctx = my t in
    R.write ctx.run_cnt (R.read ctx.run_cnt + 1);
    if ctx.is_writer then commit t ctx;
    R.span_end "rlu.section"

  let abort t =
    let ctx = my t in
    R.span_end "rlu.section";
    R.write ctx.run_cnt (R.read ctx.run_cnt + 1);
    List.iter (fun e -> e.undo ()) ctx.section;
    ctx.section <- [];
    ctx.is_writer <- false;
    ctx.aborts <- ctx.aborts + 1;
    (* Unjam conflicting threads waiting on our deferred locks. *)
    if t.defer > 0 then flush_deferred t ctx

  let flush t =
    let ctx = my t in
    if t.defer > 0 then flush_deferred t ctx

  let sum t f = Array.fold_left (fun acc ctx -> acc + f ctx) 0 t.ctxs
  let stats_commits t = sum t (fun c -> c.commits)
  let stats_aborts t = sum t (fun c -> c.aborts)
  let stats_syncs t = sum t (fun c -> c.syncs)
end
