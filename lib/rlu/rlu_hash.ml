(** The paper's RLU hash-table benchmark structure: an array of buckets,
    each an RLU-protected sorted linked list; a key hashes to one bucket.
    All buckets share one RLU instance (thread contexts and clock). *)

module Make (R : Ordo_runtime.Runtime_intf.S) (T : Ordo_core.Timestamp.S) = struct
  module List_set = Rlu_list.Make (R) (T)
  module Rlu = List_set.Rlu

  type t = { rlu : Rlu.t; buckets : List_set.set array }

  let create ?defer ?node_work ~threads ~buckets () =
    if buckets < 1 then invalid_arg "Rlu_hash.create: buckets must be >= 1";
    {
      rlu = Rlu.create ?defer ~threads ();
      buckets = Array.init buckets (fun _ -> List_set.create ?node_work ());
    }

  let bucket t key = t.buckets.(abs (key * 2654435761) mod Array.length t.buckets)
  let contains t key = List_set.contains t.rlu (bucket t key) key
  let add t key = List_set.add t.rlu (bucket t key) key
  let remove t key = List_set.remove t.rlu (bucket t key) key

  let size t =
    Array.fold_left (fun acc set -> acc + List_set.size t.rlu set) 0 t.buckets

  let flush t = Rlu.flush t.rlu
  let stats_aborts t = Rlu.stats_aborts t.rlu
  let stats_commits t = Rlu.stats_commits t.rlu
  let stats_syncs t = Rlu.stats_syncs t.rlu
end
